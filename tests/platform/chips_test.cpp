// Tests for the multi-chip extension (paper Section 7 future work).

#include <gtest/gtest.h>

#include "core/steady_state.hpp"
#include "des/flow_network.hpp"
#include "mapping/milp_mapper.hpp"
#include "sim/simulator.hpp"

namespace cellstream {
namespace {

TEST(Chips, SingleChipPlatformsHaveOneChip) {
  const CellPlatform p = platforms::qs22_single_cell();
  EXPECT_EQ(p.chip_count, 1u);
  for (PeId pe = 0; pe < p.pe_count(); ++pe) EXPECT_EQ(p.chip_of(pe), 0u);
  EXPECT_FALSE(p.crosses_chips(0, 8));
}

TEST(Chips, DualCellSplitsPesInBlocks) {
  const CellPlatform p = platforms::qs22_dual_cell();
  EXPECT_EQ(p.chip_count, 2u);
  EXPECT_EQ(p.chip_of(0), 0u);  // PPE0
  EXPECT_EQ(p.chip_of(1), 1u);  // PPE1
  EXPECT_EQ(p.chip_of(2), 0u);  // SPE0
  EXPECT_EQ(p.chip_of(9), 0u);  // SPE7 (last of chip 0)
  EXPECT_EQ(p.chip_of(10), 1u); // SPE8 (first of chip 1)
  EXPECT_EQ(p.chip_of(17), 1u); // SPE15
  EXPECT_TRUE(p.crosses_chips(0, 1));
  EXPECT_TRUE(p.crosses_chips(2, 10));
  EXPECT_FALSE(p.crosses_chips(2, 9));
}

TEST(Chips, ValidateRequiresPpePerChip) {
  CellPlatform p = platforms::qs22_dual_cell();
  p.ppe_count = 1;
  EXPECT_THROW(p.validate(), Error);
  p = platforms::qs22_dual_cell();
  p.cross_chip_bandwidth = 0.0;
  EXPECT_THROW(p.validate(), Error);
}

TaskGraph two_task_graph(double data_bytes) {
  TaskGraph g("pair");
  Task t;
  t.wppe = 1e-6;
  t.wspe = 1e-6;
  g.add_task(t);
  g.add_task(t);
  g.add_edge(0, 1, data_bytes);
  return g;
}

TEST(Chips, CrossChipLinkBecomesTheBottleneck) {
  CellPlatform p = platforms::qs22_dual_cell();
  p.cross_chip_bandwidth = 1.0e6;  // crippled link: 1 MB/s
  p.local_store_bytes = 64 * 1024 * 1024;
  p.code_bytes = 0;
  const TaskGraph g = two_task_graph(1.0e6);  // 1 MB/instance -> 1 s on link
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2);
  m.assign(0, 2);   // SPE0 (chip 0)
  m.assign(1, 10);  // SPE8 (chip 1)
  const ResourceUsage u = ss.usage(m);
  EXPECT_NEAR(u.period, 1.0, 1e-9);
  EXPECT_NE(u.bottleneck.find("link"), std::string::npos);
  // Same chip: only the 25 GB/s interfaces matter.
  m.assign(1, 3);  // SPE1 (chip 0)
  EXPECT_LT(ss.period(m), 1e-3);
}

TEST(Chips, SameChipTrafficDoesNotTouchTheLink) {
  const CellPlatform p = platforms::qs22_dual_cell();
  const TaskGraph g = two_task_graph(4096.0);
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2);
  m.assign(0, 2);
  m.assign(1, 3);
  const ResourceUsage u = ss.usage(m);
  EXPECT_DOUBLE_EQ(u.cross_chip_out_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(u.cross_chip_in_bytes[1], 0.0);
  m.assign(1, 10);
  const ResourceUsage v = ss.usage(m);
  EXPECT_DOUBLE_EQ(v.cross_chip_out_bytes[0], 4096.0);
  EXPECT_DOUBLE_EQ(v.cross_chip_in_bytes[1], 4096.0);
}

TEST(Chips, SimulatorThrottlesCrossChipTransfers) {
  CellPlatform p = platforms::qs22_dual_cell();
  p.cross_chip_bandwidth = 1.0e6;  // 1 MB/s
  p.local_store_bytes = 64 * 1024 * 1024;
  p.code_bytes = 0;
  const TaskGraph g = two_task_graph(1.0e4);  // 10 kB -> 10 ms on the link
  const SteadyStateAnalysis ss(g, p);
  Mapping cross(2);
  cross.assign(0, 2);
  cross.assign(1, 10);
  Mapping local(2);
  local.assign(0, 2);
  local.assign(1, 3);
  sim::SimOptions o;
  o.instances = 200;
  o.dispatch_overhead = 1e-9;
  o.dma_issue_overhead = 1e-9;
  const double cross_tput = sim::simulate(ss, cross, o).steady_throughput;
  const double local_tput = sim::simulate(ss, local, o).steady_throughput;
  EXPECT_LT(cross_tput, 0.05 * local_tput);
  EXPECT_NEAR(cross_tput, 100.0, 10.0);  // ~1 / 10 ms
}

TEST(Chips, MilpFormulationAvoidsACrippledLink) {
  // Two heavy communicating tasks, both SPE-friendly.  With a dead-slow
  // link the optimum keeps them on one chip.
  CellPlatform p = platforms::qs22_dual_cell();
  p.cross_chip_bandwidth = 1.0e5;
  TaskGraph g("pair");
  Task t;
  t.wppe = 5e-3;
  t.wspe = 1e-3;
  g.add_task(t);
  g.add_task(t);
  g.add_edge(0, 1, 8192.0);
  const SteadyStateAnalysis ss(g, p);
  mapping::MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  const mapping::MilpMapperResult r = mapping::solve_optimal_mapping(ss, opts);
  EXPECT_FALSE(p.crosses_chips(r.mapping.pe_of(0), r.mapping.pe_of(1)))
      << r.mapping.to_string(p);
  EXPECT_NEAR(r.period, 1e-3, 1e-6);
}

TEST(FlowNetworkResources, ExtraResourceThrottlesFlows) {
  des::Engine engine;
  des::FlowNetwork net(engine, {100.0, 100.0}, {100.0, 100.0});
  const des::ResourceId link = net.add_resource(10.0);
  std::vector<double> done;
  net.start_transfer_over({net.out_port(0), link, net.in_port(1)}, 10.0,
                          [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);  // 10 B at 10 B/s, not 100 B/s
}

TEST(FlowNetworkResources, SharedLinkSplitsFairly) {
  des::Engine engine;
  des::FlowNetwork net(engine, {100.0, 100.0, 100.0, 100.0},
                       {100.0, 100.0, 100.0, 100.0});
  const des::ResourceId link = net.add_resource(20.0);
  std::vector<double> done;
  auto cb = [&] { done.push_back(engine.now()); };
  net.start_transfer_over({net.out_port(0), link, net.in_port(2)}, 10.0, cb);
  net.start_transfer_over({net.out_port(1), link, net.in_port(3)}, 10.0, cb);
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);  // 10 B/s each over the shared link
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(FlowNetworkResources, RejectsUnknownResource) {
  des::Engine engine;
  des::FlowNetwork net(engine, {10.0}, {10.0});
  EXPECT_THROW(net.start_transfer_over({42}, 1.0, nullptr), Error);
  EXPECT_THROW(net.add_resource(0.0), Error);
}

}  // namespace
}  // namespace cellstream
