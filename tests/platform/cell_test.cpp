#include "platform/cell.hpp"

#include <gtest/gtest.h>

namespace cellstream {
namespace {

TEST(CellPlatform, DefaultsMatchThePaper) {
  const CellPlatform p;
  EXPECT_EQ(p.ppe_count, 1u);
  EXPECT_EQ(p.spe_count, 8u);
  EXPECT_DOUBLE_EQ(p.interface_bandwidth, 25.0e9);
  EXPECT_DOUBLE_EQ(p.eib_bandwidth, 200.0e9);
  EXPECT_EQ(p.local_store_bytes, 256u * 1024u);
  EXPECT_EQ(p.spe_dma_slots, 16u);
  EXPECT_EQ(p.ppe_to_spe_dma_slots, 8u);
}

TEST(CellPlatform, PeIndexingPutsPpesFirst) {
  CellPlatform p;
  p.ppe_count = 2;
  p.spe_count = 3;
  EXPECT_EQ(p.pe_count(), 5u);
  EXPECT_EQ(p.kind(0), PeKind::kPpe);
  EXPECT_EQ(p.kind(1), PeKind::kPpe);
  EXPECT_EQ(p.kind(2), PeKind::kSpe);
  EXPECT_EQ(p.kind(4), PeKind::kSpe);
  EXPECT_THROW(p.kind(5), Error);
}

TEST(CellPlatform, PeNames) {
  CellPlatform p;
  EXPECT_EQ(p.pe_name(0), "PPE0");
  EXPECT_EQ(p.pe_name(1), "SPE0");
  EXPECT_EQ(p.pe_name(8), "SPE7");
  EXPECT_THROW(p.pe_name(9), Error);
}

TEST(CellPlatform, BufferBudgetSubtractsCode) {
  CellPlatform p;
  p.local_store_bytes = 256 * 1024;
  p.code_bytes = 64 * 1024;
  EXPECT_EQ(p.buffer_budget(), 192u * 1024u);
}

TEST(CellPlatform, BufferBudgetRejectsOversizedCode) {
  CellPlatform p;
  p.code_bytes = p.local_store_bytes + 1;
  EXPECT_THROW(p.buffer_budget(), Error);
}

TEST(CellPlatform, ValidateCatchesBadParameters) {
  CellPlatform p;
  p.ppe_count = 0;
  EXPECT_THROW(p.validate(), Error);

  p = CellPlatform{};
  p.interface_bandwidth = 0.0;
  EXPECT_THROW(p.validate(), Error);

  p = CellPlatform{};
  p.code_bytes = p.local_store_bytes + 1;
  EXPECT_THROW(p.validate(), Error);

  p = CellPlatform{};
  p.spe_dma_slots = 0;
  EXPECT_THROW(p.validate(), Error);

  EXPECT_NO_THROW(CellPlatform{}.validate());
}

TEST(CellPlatform, ValidateAllowsSpeLessMachine) {
  CellPlatform p;
  p.spe_count = 0;
  p.spe_dma_slots = 0;  // irrelevant without SPEs
  EXPECT_NO_THROW(p.validate());
}

TEST(Presets, PlayStation3HasSixSpes) {
  const CellPlatform p = platforms::playstation3();
  EXPECT_EQ(p.ppe_count, 1u);
  EXPECT_EQ(p.spe_count, 6u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Presets, Qs22SingleCell) {
  const CellPlatform p = platforms::qs22_single_cell();
  EXPECT_EQ(p.ppe_count, 1u);
  EXPECT_EQ(p.spe_count, 8u);
}

TEST(Presets, Qs22DualCell) {
  const CellPlatform p = platforms::qs22_dual_cell();
  EXPECT_EQ(p.ppe_count, 2u);
  EXPECT_EQ(p.spe_count, 16u);
}

TEST(Presets, Qs22WithSpesSweepsFigure7Axis) {
  for (std::size_t s = 0; s <= 8; ++s) {
    const CellPlatform p = platforms::qs22_with_spes(s);
    EXPECT_EQ(p.spe_count, s);
    EXPECT_NO_THROW(p.validate());
  }
  EXPECT_THROW(platforms::qs22_with_spes(9), Error);
}

}  // namespace
}  // namespace cellstream
