// Robustness tests for the branch-and-bound solver: malformed callbacks,
// degenerate problems, group edge cases and bound bookkeeping.

#include <gtest/gtest.h>

#include "milp/branch_and_bound.hpp"
#include "support/rng.hpp"

namespace cellstream::milp {
namespace {

using lp::Coefficient;
using lp::kInfinity;
using lp::Problem;
using lp::VarId;

TEST(MilpRobustness, MalformedCandidatesAreIgnored) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -1.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  int calls = 0;
  solver.set_rounding_callback(
      [&](const std::vector<double>&) -> std::optional<Candidate> {
        ++calls;
        switch (calls % 4) {
          case 0: return std::nullopt;
          case 1: return Candidate{0.0, {}};            // wrong size
          case 2: return Candidate{0.0, {0.5}};         // fractional
          default: return Candidate{-5.0, {2.0}};       // bound-violating
        }
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(MilpRobustness, CandidateWithLyingObjectiveIsRecomputed) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 3.0);
  p.add_row(1.0, kInfinity, {{a, 1.0}});  // forces a = 1 -> objective 3
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  // Claims objective 0, truth is 3; the solver must keep the truth.
  solver.add_initial_incumbent({0.0, {1.0}});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(MilpRobustness, AllVariablesFixedByBounds) {
  Problem p;
  const VarId a = p.add_variable(1.0, 1.0, 2.0);  // fixed binary
  const VarId b = p.add_variable(0.0, 0.0, 5.0);
  p.add_row(-kInfinity, 2.0, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_NEAR(r.x[a], 1.0, 1e-12);
  EXPECT_NEAR(r.x[b], 0.0, 1e-12);
}

TEST(MilpRobustness, GroupValidation) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  const VarId c = p.add_variable(0, 5, 1.0);  // not integer
  p.add_row(1.0, 1.0, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  EXPECT_THROW(solver.add_exactly_one_group({a, c}), Error);
  solver.add_exactly_one_group({a, b});
  EXPECT_THROW(solver.add_exactly_one_group({b}), Error);  // already grouped
  const Result r = solver.solve();
  EXPECT_EQ(r.status, Status::kOptimal);
}

TEST(MilpRobustness, NonBinaryIntegerVariableRejected) {
  Problem p;
  const VarId wide = p.add_variable(0, 3, 1.0);
  EXPECT_THROW(Solver(std::move(p), {wide}), Error);
}

TEST(MilpRobustness, ZeroTimeLimitReturnsImmediately) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -1.0);
  p.add_row(-kInfinity, 0.6, {{a, 1.0}});
  Options opts;
  opts.time_limit_seconds = 0.0;
  Solver solver(std::move(p), {a}, opts);
  const Result r = solver.solve();
  EXPECT_EQ(r.status, Status::kLimitNoSolution);
  EXPECT_EQ(r.nodes, 0u);
}

TEST(MilpRobustness, BestBoundNeverAboveIncumbent) {
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    Problem p;
    std::vector<VarId> ints;
    std::vector<Coefficient> row;
    for (int i = 0; i < 12; ++i) {
      ints.push_back(p.add_variable(0, 1, -rng.uniform(1.0, 4.0)));
      row.push_back({ints.back(), rng.uniform(1.0, 3.0)});
    }
    p.add_row(-kInfinity, rng.uniform(6.0, 12.0), row);
    Options opts;
    opts.relative_gap = 0.10;
    Solver solver(std::move(p), ints, opts);
    const Result r = solver.solve();
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_LE(r.best_bound, r.objective + 1e-9);
    EXPECT_LE(r.gap, 0.10 + 1e-9);
    EXPECT_GE(r.gap, 0.0);
  }
}

TEST(MilpRobustness, InfeasibleAfterGroupPropagation) {
  // a + b = 1 (group), but a row forces both to 1: infeasible.
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  p.add_row(1.0, 1.0, {{a, 1.0}, {b, 1.0}});
  p.add_row(2.0, kInfinity, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  solver.add_exactly_one_group({a, b});
  EXPECT_EQ(solver.solve().status, Status::kInfeasible);
}

TEST(MilpRobustness, RepeatedSolvesAreIndependent) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -2.0);
  const VarId b = p.add_variable(0, 1, -3.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}, {b, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  const Result first = solver.solve();
  const Result second = solver.solve();
  ASSERT_EQ(first.status, Status::kOptimal);
  ASSERT_EQ(second.status, Status::kOptimal);
  EXPECT_NEAR(first.objective, second.objective, 1e-12);
  EXPECT_EQ(first.x, second.x);
}

}  // namespace
}  // namespace cellstream::milp
