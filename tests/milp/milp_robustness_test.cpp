// Robustness tests for the branch-and-bound solver: malformed callbacks,
// degenerate problems, group edge cases and bound bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "milp/branch_and_bound.hpp"
#include "support/rng.hpp"

namespace cellstream::milp {
namespace {

using lp::Coefficient;
using lp::kInfinity;
using lp::Problem;
using lp::VarId;

TEST(MilpRobustness, MalformedCandidatesAreIgnored) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -1.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  int calls = 0;
  solver.set_rounding_callback(
      [&](const std::vector<double>&) -> std::optional<Candidate> {
        ++calls;
        switch (calls % 4) {
          case 0: return std::nullopt;
          case 1: return Candidate{0.0, {}};            // wrong size
          case 2: return Candidate{0.0, {0.5}};         // fractional
          default: return Candidate{-5.0, {2.0}};       // bound-violating
        }
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(MilpRobustness, CandidateWithLyingObjectiveIsRecomputed) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 3.0);
  p.add_row(1.0, kInfinity, {{a, 1.0}});  // forces a = 1 -> objective 3
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  // Claims objective 0, truth is 3; the solver must keep the truth.
  solver.add_initial_incumbent({0.0, {1.0}});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(MilpRobustness, AllVariablesFixedByBounds) {
  Problem p;
  const VarId a = p.add_variable(1.0, 1.0, 2.0);  // fixed binary
  const VarId b = p.add_variable(0.0, 0.0, 5.0);
  p.add_row(-kInfinity, 2.0, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_NEAR(r.x[a], 1.0, 1e-12);
  EXPECT_NEAR(r.x[b], 0.0, 1e-12);
}

TEST(MilpRobustness, GroupValidation) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  const VarId c = p.add_variable(0, 5, 1.0);  // not integer
  p.add_row(1.0, 1.0, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  EXPECT_THROW(solver.add_exactly_one_group({a, c}), Error);
  solver.add_exactly_one_group({a, b});
  EXPECT_THROW(solver.add_exactly_one_group({b}), Error);  // already grouped
  const Result r = solver.solve();
  EXPECT_EQ(r.status, Status::kOptimal);
}

TEST(MilpRobustness, NonBinaryIntegerVariableRejected) {
  Problem p;
  const VarId wide = p.add_variable(0, 3, 1.0);
  EXPECT_THROW(Solver(std::move(p), {wide}), Error);
}

TEST(MilpRobustness, ZeroTimeLimitReturnsImmediately) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -1.0);
  p.add_row(-kInfinity, 0.6, {{a, 1.0}});
  Options opts;
  opts.time_limit_seconds = 0.0;
  Solver solver(std::move(p), {a}, opts);
  const Result r = solver.solve();
  EXPECT_EQ(r.status, Status::kLimitNoSolution);
  EXPECT_EQ(r.nodes, 0u);
}

TEST(MilpRobustness, BestBoundNeverAboveIncumbent) {
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    Problem p;
    std::vector<VarId> ints;
    std::vector<Coefficient> row;
    for (int i = 0; i < 12; ++i) {
      ints.push_back(p.add_variable(0, 1, -rng.uniform(1.0, 4.0)));
      row.push_back({ints.back(), rng.uniform(1.0, 3.0)});
    }
    p.add_row(-kInfinity, rng.uniform(6.0, 12.0), row);
    Options opts;
    opts.relative_gap = 0.10;
    Solver solver(std::move(p), ints, opts);
    const Result r = solver.solve();
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_LE(r.best_bound, r.objective + 1e-9);
    EXPECT_LE(r.gap, 0.10 + 1e-9);
    EXPECT_GE(r.gap, 0.0);
  }
}

TEST(MilpRobustness, InfeasibleAfterGroupPropagation) {
  // a + b = 1 (group), but a row forces both to 1: infeasible.
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  p.add_row(1.0, 1.0, {{a, 1.0}, {b, 1.0}});
  p.add_row(2.0, kInfinity, {{a, 1.0}, {b, 1.0}});
  Solver solver(std::move(p), {a, b});
  solver.add_exactly_one_group({a, b});
  EXPECT_EQ(solver.solve().status, Status::kInfeasible);
}

// Fabricated-callback regressions: a rounding callback is untrusted input.
// NaN coordinates and objectives make every downstream tolerance check
// (fractionality > tol, violation > tol) silently false, which used to let
// such candidates through; an inconsistent claimed objective used to be
// silently replaced by the recomputation, trusting a provably lying
// callback.  All of them must be rejected outright and the search must
// still reach the true optimum.

// min -3a - 2b st 2a + 2b <= 3, binaries.  The root LP optimum is the
// fractional (1, 0.5), so the rounding callback is consulted at least
// once; the true optimum is -3 at (1, 0).
Solver fractional_root_solver() {
  Problem p;
  const VarId a = p.add_variable(0, 1, -3.0);
  const VarId b = p.add_variable(0, 1, -2.0);
  p.add_row(-kInfinity, 3.0, {{a, 2.0}, {b, 2.0}});
  Options opts;
  opts.relative_gap = 0.0;
  return Solver(std::move(p), {a, b}, opts);
}

TEST(MilpRobustness, CallbackNanObjectiveIsRejected) {
  Solver solver = fractional_root_solver();
  solver.set_rounding_callback(
      [](const std::vector<double>&) -> std::optional<Candidate> {
        return Candidate{std::numeric_limits<double>::quiet_NaN(),
                         {1.0, 0.0}};
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_GE(r.stats.callback_candidates, 1u);
  EXPECT_EQ(r.stats.callback_accepted, 0u);
}

TEST(MilpRobustness, CallbackNanCoordinateIsRejected) {
  Solver solver = fractional_root_solver();
  solver.set_rounding_callback(
      [](const std::vector<double>&) -> std::optional<Candidate> {
        // Plausible objective, poisoned solution vector.  A NaN coordinate
        // makes the fractionality and violation checks silently pass.
        return Candidate{-3.0,
                         {1.0, std::numeric_limits<double>::quiet_NaN()}};
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
  for (double v : r.x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(r.stats.callback_candidates, 1u);
  EXPECT_EQ(r.stats.callback_accepted, 0u);
}

TEST(MilpRobustness, CallbackInfiniteObjectiveIsRejected) {
  Solver solver = fractional_root_solver();
  solver.set_rounding_callback(
      [](const std::vector<double>&) -> std::optional<Candidate> {
        // -inf claims "better than anything": must not poison the
        // incumbent or the reported gap/bound.
        return Candidate{-std::numeric_limits<double>::infinity(),
                         {1.0, 0.0}};
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
  EXPECT_TRUE(std::isfinite(r.best_bound));
  EXPECT_GE(r.stats.callback_candidates, 1u);
  EXPECT_EQ(r.stats.callback_accepted, 0u);
}

TEST(MilpRobustness, CallbackInconsistentObjectiveIsRejectedNotRecomputed) {
  // The candidate point is feasible and integral but the claimed objective
  // (-100) contradicts the recomputation (-3).  The fix rejects the
  // candidate wholesale instead of silently substituting the recomputed
  // value: a callback that lies about the objective cannot be trusted
  // about anything else.
  Solver solver = fractional_root_solver();
  solver.set_rounding_callback(
      [](const std::vector<double>&) -> std::optional<Candidate> {
        return Candidate{-100.0, {1.0, 0.0}};
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
  EXPECT_GE(r.stats.callback_candidates, 1u);
  EXPECT_EQ(r.stats.callback_accepted, 0u);
  EXPECT_GE(r.stats.callback_rejected, 1u);
}

TEST(MilpRobustness, InfeasibleBranchNodesAreClosed) {
  // 2a + 2b = 3 is LP-feasible (a = 1, b = 0.5) but has no binary point:
  // both subtrees of the first branch die as infeasible *nodes*, not at
  // the root.
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  p.add_row(3.0, 3.0, {{a, 2.0}, {b, 2.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  const Result r = solver.solve();
  EXPECT_EQ(r.status, Status::kInfeasible);
  EXPECT_GE(r.stats.infeasible_nodes, 2u);
  EXPECT_GE(r.nodes, 3u);  // root + both children explored
}

TEST(MilpRobustness, UnboundedRelaxationTerminates) {
  // The continuous direction is unbounded regardless of the binary, so no
  // node LP ever converges.  The solver must terminate (blind-branching
  // until every integer is fixed) without claiming optimality or crashing.
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId y = p.add_variable(0.0, kInfinity, -1.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  const Result r = solver.solve();
  EXPECT_NE(r.status, Status::kOptimal);
  EXPECT_LE(r.nodes, 8u);
  (void)y;
}

TEST(MilpRobustness, RepeatedSolvesAreIndependent) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -2.0);
  const VarId b = p.add_variable(0, 1, -3.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}, {b, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  const Result first = solver.solve();
  const Result second = solver.solve();
  ASSERT_EQ(first.status, Status::kOptimal);
  ASSERT_EQ(second.status, Status::kOptimal);
  EXPECT_NEAR(first.objective, second.objective, 1e-12);
  EXPECT_EQ(first.x, second.x);
}

}  // namespace
}  // namespace cellstream::milp
