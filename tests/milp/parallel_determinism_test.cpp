// Determinism-by-construction regressions for the parallel branch-and-
// bound (docs/FORMULATION.md): the solver's round-based schedule depends
// only on round_size, never on the thread count, and every node LP is a
// pure function of (problem, fixing chain, parent basis).  Consequently
// solving the same instance with 1, 2, 4, or hardware_concurrency threads
// must return bit-identical results — not merely equal objectives, but the
// exact incumbent vector, bound, node count, pivot count, and round count.

#include "milp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/daggen.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/rng.hpp"

namespace cellstream::milp {
namespace {

using lp::Coefficient;
using lp::kInfinity;
using lp::Problem;
using lp::VarId;

// A knapsack whose gap-0 tree is a few dozen nodes: enough rounds that a
// scheduling bug would actually show, small enough to run at four thread
// counts inside a unit test.
Problem knapsack_problem(std::uint64_t seed, int n,
                         std::vector<VarId>* ints) {
  Rng rng(seed);
  Problem p;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    ints->push_back(p.add_variable(0.0, 1.0, -rng.uniform(1.0, 10.0)));
    row.push_back({ints->back(), rng.uniform(1.0, 6.0)});
  }
  p.add_row(-kInfinity, 0.35 * 6.0 * n, row);
  return p;
}

Result solve_knapsack(std::uint64_t seed, std::size_t threads) {
  std::vector<VarId> ints;
  Problem p = knapsack_problem(seed, 14, &ints);
  Options opts;
  opts.relative_gap = 0.0;
  opts.threads = threads;
  Solver solver(std::move(p), ints, opts);
  return solver.solve();
}

void expect_bit_identical(const Result& a, const Result& b,
                          std::size_t threads) {
  ASSERT_EQ(a.status, b.status) << threads << " threads";
  EXPECT_EQ(a.objective, b.objective) << threads << " threads";
  EXPECT_EQ(a.x, b.x) << threads << " threads";
  EXPECT_EQ(a.best_bound, b.best_bound) << threads << " threads";
  EXPECT_EQ(a.nodes, b.nodes) << threads << " threads";
  EXPECT_EQ(a.lp_iterations, b.lp_iterations) << threads << " threads";
  EXPECT_EQ(a.stats.rounds, b.stats.rounds) << threads << " threads";
  EXPECT_EQ(a.stats.warm_start_hits, b.stats.warm_start_hits)
      << threads << " threads";
  EXPECT_EQ(a.stats.pruned_by_bound, b.stats.pruned_by_bound)
      << threads << " threads";
  EXPECT_EQ(a.stats.integral_leaves, b.stats.integral_leaves)
      << threads << " threads";
  // The incumbent trajectory is stamped with deterministic search
  // positions (round, committed nodes), never wall time, so it must be
  // bit-identical too.
  ASSERT_EQ(a.stats.incumbents.size(), b.stats.incumbents.size())
      << threads << " threads";
  for (std::size_t i = 0; i < a.stats.incumbents.size(); ++i) {
    EXPECT_EQ(a.stats.incumbents[i].round, b.stats.incumbents[i].round);
    EXPECT_EQ(a.stats.incumbents[i].nodes, b.stats.incumbents[i].nodes);
    EXPECT_EQ(a.stats.incumbents[i].objective,
              b.stats.incumbents[i].objective);
  }
}

TEST(ParallelDeterminism, KnapsackBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11u, 29u, 47u}) {
    const Result reference = solve_knapsack(seed, 1);
    ASSERT_EQ(reference.status, Status::kOptimal) << "seed " << seed;
    ASSERT_GT(reference.nodes, 3u) << "seed " << seed;  // a real tree
    for (std::size_t threads : {2u, 4u, 8u}) {
      expect_bit_identical(reference, solve_knapsack(seed, threads), threads);
    }
    // threads == 0 means hardware concurrency; still bit-identical.
    expect_bit_identical(reference, solve_knapsack(seed, 0), 0);
  }
}

TEST(ParallelDeterminism, GroupsAndRoundingCallbackStayDeterministic) {
  // Generalized assignment with exactly-one groups and a rounding callback
  // — the callback runs on worker threads when threads > 1, so this also
  // exercises the commit-order validation path under real concurrency.
  const auto solve_with = [](std::size_t threads) {
    Rng rng(321);
    const int tasks = 7, machines = 3;
    Problem p;
    std::vector<std::vector<VarId>> var(tasks, std::vector<VarId>(machines));
    std::vector<VarId> ints;
    for (int t = 0; t < tasks; ++t) {
      for (int m = 0; m < machines; ++m) {
        var[t][m] = p.add_variable(0.0, 1.0, rng.uniform(1.0, 9.0));
        ints.push_back(var[t][m]);
      }
    }
    std::vector<std::vector<double>> load(tasks,
                                          std::vector<double>(machines));
    for (int t = 0; t < tasks; ++t) {
      std::vector<Coefficient> row;
      for (int m = 0; m < machines; ++m) {
        load[t][m] = rng.uniform(1.0, 4.0);
        row.push_back({var[t][m], 1.0});
      }
      p.add_row(1.0, 1.0, row);
    }
    for (int m = 0; m < machines; ++m) {
      std::vector<Coefficient> row;
      for (int t = 0; t < tasks; ++t) row.push_back({var[t][m], load[t][m]});
      p.add_row(-kInfinity, 9.0, row);
    }
    const Problem frozen = p;  // callback needs the pre-move copy
    Options opts;
    opts.relative_gap = 0.0;
    opts.threads = threads;
    Solver solver(std::move(p), ints, opts);
    for (int t = 0; t < tasks; ++t) {
      std::vector<VarId> group;
      for (int m = 0; m < machines; ++m) group.push_back(var[t][m]);
      solver.add_exactly_one_group(group);
    }
    // Pure, thread-safe rounding: assign each task to its largest alpha.
    solver.set_rounding_callback(
        [&frozen, &var, tasks, machines](const std::vector<double>& x)
            -> std::optional<Candidate> {
          std::vector<double> rounded(x.size(), 0.0);
          for (int t = 0; t < tasks; ++t) {
            int best = 0;
            for (int m = 1; m < machines; ++m) {
              if (x[var[t][m]] > x[var[t][best]]) best = m;
            }
            rounded[var[t][best]] = 1.0;
          }
          if (frozen.max_violation(rounded) > 1e-9) return std::nullopt;
          return Candidate{frozen.objective_value(rounded),
                           std::move(rounded)};
        });
    return solver.solve();
  };

  const Result reference = solve_with(1);
  ASSERT_EQ(reference.status, Status::kOptimal);
  for (std::size_t threads : {2u, 4u}) {
    expect_bit_identical(reference, solve_with(threads), threads);
  }
}

TEST(ParallelDeterminism, SmallRoundSizeMatchesAcrossThreadCounts) {
  // round_size below the thread count: rounds have fewer nodes than
  // workers, exercising the nthreads = min(threads, k) clamp.
  std::vector<VarId> ints;
  Problem p = knapsack_problem(11, 14, &ints);
  Options opts;
  opts.relative_gap = 0.0;
  opts.round_size = 2;
  opts.threads = 1;
  Result reference;
  {
    std::vector<VarId> ints1;
    Problem p1 = knapsack_problem(11, 14, &ints1);
    Solver solver(std::move(p1), ints1, opts);
    reference = solver.solve();
  }
  ASSERT_EQ(reference.status, Status::kOptimal);
  opts.threads = 8;
  Solver solver(std::move(p), ints, opts);
  expect_bit_identical(reference, solver.solve(), 8);
}

TEST(ParallelDeterminism, MilpMapperBitIdenticalAcrossThreads) {
  // The full mapping stack (formulation + groups + priorities + rounding
  // callback + heuristic seeding) through MilpMapperOptions::with_threads,
  // i.e. exactly what differential rule D5 checks inside the fuzz driver.
  gen::DagGenParams params;
  params.task_count = 8;
  params.seed = 3;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());

  mapping::MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  const mapping::MilpMapperResult seq =
      mapping::solve_optimal_mapping(analysis, opts);
  ASSERT_EQ(seq.status, Status::kOptimal);
  const mapping::MilpMapperResult par =
      mapping::solve_optimal_mapping(analysis, opts.with_threads(4));
  ASSERT_EQ(par.status, Status::kOptimal);
  EXPECT_TRUE(par.mapping == seq.mapping);
  EXPECT_EQ(par.period, seq.period);
  EXPECT_EQ(par.best_bound, seq.best_bound);
  EXPECT_EQ(par.nodes, seq.nodes);
  EXPECT_EQ(par.lp_iterations, seq.lp_iterations);
  EXPECT_EQ(par.stats.rounds, seq.stats.rounds);
}

TEST(ParallelDeterminism, StatsAreInternallyConsistent) {
  const Result r = solve_knapsack(29, 4);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.stats.nodes, r.nodes);
  EXPECT_EQ(r.stats.lp_iterations, r.lp_iterations);
  EXPECT_EQ(r.stats.warm_start_hits + r.stats.warm_start_misses, r.nodes);
  EXPECT_GE(r.stats.rounds, 1u);
  EXPECT_GE(r.stats.max_open_size, 1u);
  EXPECT_GE(r.stats.threads_used, 1u);
  EXPECT_LE(r.stats.threads_used, 4u);
  // Leaves and infeasible nodes are committed nodes; pruned_by_bound may
  // exceed the committed count because the sweep also closes open-list
  // entries that were never solved.
  EXPECT_LE(r.stats.integral_leaves + r.stats.infeasible_nodes,
            r.stats.nodes);
}

TEST(ParallelDeterminism, IncumbentTrajectoryIsMonotoneAndEndsAtOptimum) {
  const Result r = solve_knapsack(29, 4);
  ASSERT_EQ(r.status, Status::kOptimal);
  const auto& traj = r.stats.incumbents;
  ASSERT_FALSE(traj.empty());
  for (std::size_t i = 1; i < traj.size(); ++i) {
    // Minimization: every recorded incumbent strictly improves, at a
    // search position no earlier than its predecessor's.
    EXPECT_LT(traj[i].objective, traj[i - 1].objective);
    EXPECT_GE(traj[i].round, traj[i - 1].round);
    if (traj[i].round == traj[i - 1].round) {
      EXPECT_GE(traj[i].nodes, traj[i - 1].nodes);
    }
  }
  EXPECT_DOUBLE_EQ(traj.back().objective, r.objective);
  EXPECT_LE(traj.back().nodes, r.nodes);
}

}  // namespace
}  // namespace cellstream::milp
