#include "milp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace cellstream::milp {
namespace {

using lp::Coefficient;
using lp::kInfinity;
using lp::Problem;
using lp::VarId;

TEST(Milp, PureLpPassesThrough) {
  Problem p;
  p.add_variable(0.0, 3.0, 1.0);
  Solver solver(std::move(p), {});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-8);
}

TEST(Milp, SingleBinaryRoundsAwayFromFraction) {
  // min |x - 0.4|-ish: min 1*x st x >= 0.4 (binary)  ->  x = 1.
  Problem p;
  const VarId x = p.add_variable(0.0, 1.0, 1.0);
  p.add_row(0.4, kInfinity, {{x, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {x}, opts);
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, 1e-9);
  EXPECT_NEAR(r.objective, 1.0, 1e-8);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.3 <= x <= 0.7 has no binary point.
  Problem p;
  const VarId x = p.add_variable(0.0, 1.0, 1.0);
  p.add_row(0.3, 0.7, {{x, 1.0}});
  Solver solver(std::move(p), {x});
  EXPECT_EQ(solver.solve().status, Status::kInfeasible);
}

double brute_force_knapsack(const std::vector<double>& value,
                            const std::vector<double>& weight,
                            double capacity) {
  const int n = static_cast<int>(value.size());
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        v += value[i];
        w += weight[i];
      }
    }
    if (w <= capacity + 1e-12) best = std::max(best, v);
  }
  return best;
}

class KnapsackMilp : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackMilp, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int n = 10;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform(1.0, 10.0);
    weight[i] = rng.uniform(1.0, 6.0);
  }
  const double capacity = rng.uniform(8.0, 20.0);

  Problem p;
  std::vector<VarId> ints;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    ints.push_back(p.add_variable(0.0, 1.0, -value[i]));
    row.push_back({ints.back(), weight[i]});
  }
  p.add_row(-kInfinity, capacity, row);

  Options opts;
  opts.relative_gap = 0.0;  // exact
  Solver solver(std::move(p), ints, opts);
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(-r.objective, brute_force_knapsack(value, weight, capacity),
              1e-6);
  EXPECT_LE(r.gap, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackMilp, ::testing::Range(0, 15));

// Generalized assignment: tasks to machines with capacity, exactly-one
// groups; compared against exhaustive enumeration.
class GapMilp : public ::testing::TestWithParam<int> {};

TEST_P(GapMilp, MatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  const int tasks = 6, machines = 3;
  std::vector<std::vector<double>> cost(tasks, std::vector<double>(machines));
  std::vector<std::vector<double>> load(tasks, std::vector<double>(machines));
  for (int t = 0; t < tasks; ++t) {
    for (int m = 0; m < machines; ++m) {
      cost[t][m] = rng.uniform(1.0, 9.0);
      load[t][m] = rng.uniform(1.0, 4.0);
    }
  }
  const double cap = 8.0;

  Problem p;
  std::vector<std::vector<VarId>> var(tasks, std::vector<VarId>(machines));
  std::vector<VarId> ints;
  for (int t = 0; t < tasks; ++t) {
    for (int m = 0; m < machines; ++m) {
      var[t][m] = p.add_variable(0.0, 1.0, cost[t][m]);
      ints.push_back(var[t][m]);
    }
  }
  for (int t = 0; t < tasks; ++t) {
    std::vector<Coefficient> row;
    for (int m = 0; m < machines; ++m) row.push_back({var[t][m], 1.0});
    p.add_row(1.0, 1.0, row);
  }
  for (int m = 0; m < machines; ++m) {
    std::vector<Coefficient> row;
    for (int t = 0; t < tasks; ++t) row.push_back({var[t][m], load[t][m]});
    p.add_row(-kInfinity, cap, row);
  }

  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), ints, opts);
  for (int t = 0; t < tasks; ++t) {
    std::vector<VarId> group;
    for (int m = 0; m < machines; ++m) group.push_back(var[t][m]);
    solver.add_exactly_one_group(group);
  }
  const Result r = solver.solve();

  // Exhaustive search over machines^tasks assignments.
  double best = kInfinity;
  std::vector<int> assign(tasks, 0);
  const int total = static_cast<int>(std::pow(machines, tasks));
  for (int code = 0; code < total; ++code) {
    int c = code;
    for (int t = 0; t < tasks; ++t) {
      assign[t] = c % machines;
      c /= machines;
    }
    std::vector<double> used(machines, 0.0);
    double value = 0.0;
    bool ok = true;
    for (int t = 0; t < tasks; ++t) {
      used[assign[t]] += load[t][assign[t]];
      value += cost[t][assign[t]];
      if (used[assign[t]] > cap + 1e-12) {
        ok = false;
        break;
      }
    }
    if (ok) best = std::min(best, value);
  }

  if (std::isinf(best)) {
    EXPECT_EQ(r.status, Status::kInfeasible);
  } else {
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapMilp, ::testing::Range(0, 10));

TEST(Milp, RelativeGapStopsEarlyButStaysWithinGap) {
  // Knapsack with a 20% allowed gap: the incumbent must be within 20% of
  // the true optimum (and typically fewer nodes are explored).
  Rng rng(4242);
  const int n = 12;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform(1.0, 10.0);
    weight[i] = rng.uniform(1.0, 6.0);
  }
  const double capacity = 18.0;

  const double exact = brute_force_knapsack(value, weight, capacity);

  Problem p;
  std::vector<VarId> ints;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    ints.push_back(p.add_variable(0.0, 1.0, -value[i]));
    row.push_back({ints.back(), weight[i]});
  }
  p.add_row(-kInfinity, capacity, row);

  Options opts;
  opts.relative_gap = 0.20;
  Solver solver(std::move(p), ints, opts);
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  // Minimization objective is -value: incumbent within 20%.
  EXPECT_LE(exact * 0.8, -r.objective + 1e-9);
  EXPECT_LE(-r.objective, exact + 1e-9);
}

TEST(Milp, InitialIncumbentIsUsedWhenOptimal) {
  // min x0 + x1 st x0 + x1 >= 1, binaries; optimal value 1.
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  const VarId b = p.add_variable(0, 1, 1.0);
  p.add_row(1.0, kInfinity, {{a, 1.0}, {b, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  solver.add_initial_incumbent({1.0, {1.0, 0.0}});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Milp, RejectsInvalidInitialIncumbent) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 1.0);
  p.add_row(1.0, kInfinity, {{a, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a}, opts);
  // Violates the row; must be ignored, and the true optimum (1.0) found.
  solver.add_initial_incumbent({0.0, {0.0}});
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Milp, RoundingCallbackAcceleratesAndIsVerified) {
  // Callback proposes the known optimum; solver should accept it.
  Problem p;
  const VarId a = p.add_variable(0, 1, -3.0);
  const VarId b = p.add_variable(0, 1, -2.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}, {b, 1.0}});  // at most one
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  int calls = 0;
  solver.set_rounding_callback(
      [&](const std::vector<double>&) -> std::optional<Candidate> {
        ++calls;
        return Candidate{-3.0, {1.0, 0.0}};
      });
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
  EXPECT_GE(calls, 0);
}

TEST(Milp, NodeLimitReturnsLimitStatus) {
  Rng rng(7);
  const int n = 16;
  Problem p;
  std::vector<VarId> ints;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    ints.push_back(p.add_variable(0.0, 1.0, -rng.uniform(1.0, 2.0)));
    row.push_back({ints.back(), rng.uniform(1.0, 2.0)});
  }
  p.add_row(-kInfinity, 9.0, {row});
  Options opts;
  opts.relative_gap = 0.0;
  opts.max_nodes = 2;
  Solver solver(std::move(p), ints, opts);
  const Result r = solver.solve();
  EXPECT_TRUE(r.status == Status::kLimitFeasible ||
              r.status == Status::kLimitNoSolution);
  EXPECT_LE(r.nodes, 3u);
}

TEST(Milp, BranchPriorityIsAccepted) {
  Problem p;
  const VarId a = p.add_variable(0, 1, -1.0);
  const VarId b = p.add_variable(0, 1, -1.0);
  p.add_row(-kInfinity, 1.0, {{a, 1.0}, {b, 1.0}});
  Options opts;
  opts.relative_gap = 0.0;
  Solver solver(std::move(p), {a, b}, opts);
  solver.set_branch_priority(b, 10.0);
  EXPECT_THROW(solver.set_branch_priority(99, 1.0), Error);
  const Result r = solver.solve();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

}  // namespace
}  // namespace cellstream::milp
